// Command lint-docs enforces the repository's documentation floor
// (OBSERVABILITY.md grew out of the same audit): every package must
// carry a package-level doc comment, and every cmd/ binary's doc
// comment must mention each flag the binary defines by name (so
// `go doc ./cmd/tempo-bench` is a complete usage reference). Missing
// package docs and undocumented flags are fatal; exported declarations
// without doc comments are reported as warnings so the gap is visible
// without blocking CI on legacy symbols.
//
// Flag mentions are matched boundary-aware: "-trace" in the doc
// satisfies a flag named "trace", but "-trace-events" does not, so a
// rename cannot silently leave a stale cousin covering for it.
//
// The same spec-first discipline covers the translation-mechanism zoo:
// every mechanism registered in internal/translation (the string
// literal passed to Register) must be mentioned in MECHANISMS.md, the
// zoo's normative spec — boundary-aware like the flag check, so
// "victimax" cannot cover for "victima". Registering a mechanism
// without writing its spec is fatal.
//
// Metric names get the same treatment: every canonical instrument name
// — the Metric* string constants in internal/obsv plus every string
// literal passed to a registry Counter / Histogram / Gauge call — must
// appear in OBSERVABILITY.md, the metric reference. Names built at
// runtime (fmt.Sprintf per-core prefixes, loop variables) are skipped;
// their shape is documented as core<i>/... patterns instead. Matching
// is boundary-aware over the metric charset (letters, digits, _, -, /)
// so "sys/tlb_misses_total" cannot cover for "sys/tlb_misses".
//
// Run from the repository root (CI does):
//
//	go run ./scripts/lint-docs.go
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint-docs: %v\n", err)
		os.Exit(2)
	}

	var fatal []string
	warnings := 0
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint-docs: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for name, pkg := range pkgs {
			if !hasPackageDoc(pkg) {
				fatal = append(fatal, fmt.Sprintf("no package doc comment: %s (package %s)", dir, name))
			}
			warnings += reportUndocumentedExports(fset, pkg)
			if name == "main" && strings.HasPrefix(filepath.ToSlash(dir), "cmd/") {
				for _, flagName := range undocumentedFlags(pkg) {
					fatal = append(fatal, fmt.Sprintf(
						"%s: doc comment does not mention flag -%s", dir, flagName))
				}
			}
		}
	}

	for _, m := range mechanismDocGaps(root) {
		fatal = append(fatal, m)
	}
	for _, m := range metricDocGaps(root, dirs) {
		fatal = append(fatal, m)
	}

	if warnings > 0 {
		fmt.Fprintf(os.Stderr, "lint-docs: %d exported declarations without doc comments (warnings)\n", warnings)
	}
	if len(fatal) > 0 {
		sort.Strings(fatal)
		for _, m := range fatal {
			fmt.Fprintf(os.Stderr, "lint-docs: FATAL: %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("lint-docs: %d packages documented, %d export warnings\n", len(dirs), warnings)
}

// flagDefs maps flag-package constructor method names to the argument
// index holding the flag's name. Covers both the package-level funcs
// (flag.String) and FlagSet methods (fs.String), which share names.
var flagDefs = map[string]int{
	"String": 0, "Bool": 0, "Int": 0, "Int64": 0, "Uint": 0, "Uint64": 0,
	"Float64": 0, "Duration": 0,
	"StringVar": 1, "BoolVar": 1, "IntVar": 1, "Int64Var": 1, "UintVar": 1,
	"Uint64Var": 1, "Float64Var": 1, "DurationVar": 1, "TextVar": 1,
	"Var": 1, "Func": 0, "BoolFunc": 0,
}

// undocumentedFlags returns the names of flags the package defines
// whose doc comment never mentions them as "-name" (boundary-aware:
// the character after the name must not continue an identifier, so
// "-trace-events" cannot satisfy a flag named "trace").
func undocumentedFlags(pkg *ast.Package) []string {
	var doc strings.Builder
	for _, f := range pkg.Files {
		if f.Doc != nil {
			doc.WriteString(f.Doc.Text())
			doc.WriteString("\n")
		}
	}
	var missing []string
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			idx, ok := flagDefs[sel.Sel.Name]
			if !ok || idx >= len(call.Args) {
				return true
			}
			lit, ok := call.Args[idx].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name := strings.Trim(lit.Value, `"`)
			if name == "" || seen[name] {
				return true
			}
			seen[name] = true
			if !docMentionsFlag(doc.String(), name) {
				missing = append(missing, name)
			}
			return true
		})
	}
	sort.Strings(missing)
	return missing
}

// docMentionsFlag reports whether doc contains "-name" at a flag-name
// boundary: not preceded by an identifier character (which would make
// it the tail of a longer flag like -trace-events) and not followed by
// one of [a-zA-Z0-9_-] (which would make it a prefix of one).
func docMentionsFlag(doc, name string) bool {
	pat := "-" + name
	for i := 0; ; {
		j := strings.Index(doc[i:], pat)
		if j < 0 {
			return false
		}
		j += i
		i = j + 1
		if j > 0 && isFlagChar(doc[j-1]) {
			continue // tail of a longer name: "...ce-events" vs "-events"
		}
		if end := j + len(pat); end < len(doc) && isFlagChar(doc[end]) {
			continue // prefix of a longer name: "-trace" vs "-trace-events"
		}
		return true
	}
}

// isFlagChar reports whether c can appear inside a flag name.
func isFlagChar(c byte) bool {
	return c == '-' || c == '_' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// mechanismDocGaps enforces the MECHANISMS.md gate: every mechanism
// registered in internal/translation must appear in MECHANISMS.md.
// Returns one fatal message per gap; a repo without a translation
// package (or without registered mechanisms) trivially passes, but a
// registered mechanism with a missing spec file does not.
func mechanismDocGaps(root string) []string {
	names, err := registeredMechanisms(filepath.Join(root, "internal", "translation"))
	if err != nil {
		return []string{fmt.Sprintf("internal/translation: %v", err)}
	}
	if len(names) == 0 {
		return nil
	}
	specPath := filepath.Join(root, "MECHANISMS.md")
	spec, err := os.ReadFile(specPath)
	if err != nil {
		return []string{fmt.Sprintf("%d mechanisms registered but MECHANISMS.md is unreadable: %v", len(names), err)}
	}
	var gaps []string
	for _, name := range names {
		if !docMentionsWord(string(spec), name) {
			gaps = append(gaps, fmt.Sprintf(
				"MECHANISMS.md: registered mechanism %q is never mentioned (write its spec)", name))
		}
	}
	return gaps
}

// registeredMechanisms returns the sorted names passed as the first
// string-literal argument to Register / translation.Register calls in
// the package at dir. A missing directory yields no names (repos
// without the zoo pass the gate trivially).
func registeredMechanisms(dir string) ([]string, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil, nil
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.Name != "Register" {
						return true
					}
				case *ast.SelectorExpr:
					if fun.Sel.Name != "Register" {
						return true
					}
				default:
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if name := strings.Trim(lit.Value, "`\""); name != "" {
					seen[name] = true
				}
				return true
			})
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// docMentionsWord reports whether doc contains name at identifier
// boundaries — the mechanism-name analogue of docMentionsFlag, without
// the leading dash (so both `victima` prose and -mech victima usage
// satisfy it, but "victimax" or "revictima" do not).
func docMentionsWord(doc, name string) bool {
	for i := 0; ; {
		j := strings.Index(doc[i:], name)
		if j < 0 {
			return false
		}
		j += i
		i = j + 1
		if j > 0 && isFlagChar(doc[j-1]) {
			continue
		}
		if end := j + len(name); end < len(doc) && isFlagChar(doc[end]) {
			continue
		}
		return true
	}
}

// metricDocGaps enforces the OBSERVABILITY.md gate: every registered
// counter/gauge/histogram name must appear in the metric reference.
// dirs is the package-directory list main already computed. A repo
// registering no metrics trivially passes; a registered name with no
// OBSERVABILITY.md (or one the doc never mentions) is fatal.
func metricDocGaps(root string, dirs []string) []string {
	names, err := registeredMetricNames(root, dirs)
	if err != nil {
		return []string{fmt.Sprintf("metric scan: %v", err)}
	}
	if len(names) == 0 {
		return nil
	}
	docPath := filepath.Join(root, "OBSERVABILITY.md")
	doc, err := os.ReadFile(docPath)
	if err != nil {
		return []string{fmt.Sprintf("%d metrics registered but OBSERVABILITY.md is unreadable: %v", len(names), err)}
	}
	var gaps []string
	for _, name := range names {
		if !docMentionsMetric(string(doc), name) {
			gaps = append(gaps, fmt.Sprintf(
				"OBSERVABILITY.md: registered metric %q is never mentioned (document it)", name))
		}
	}
	return gaps
}

// registryCtors names the obsv.Registry instrument constructors whose
// first argument is the metric name.
var registryCtors = map[string]bool{"Counter": true, "Histogram": true, "Gauge": true}

// registeredMetricNames returns the sorted union of (a) the values of
// Metric* string constants in internal/obsv — the canonical name list
// every gauge/sweep view registers through — and (b) every string
// literal passed as the first argument to a Counter/Histogram/Gauge
// call anywhere in the repo. Computed names (non-literal arguments)
// are skipped by construction.
func registeredMetricNames(root string, dirs []string) ([]string, error) {
	seen := map[string]bool{}

	obsvDir := filepath.Join(root, "internal", "obsv")
	if _, err := os.Stat(obsvDir); err == nil {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, obsvDir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.CONST {
						continue
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for i, id := range vs.Names {
							if !strings.HasPrefix(id.Name, "Metric") || i >= len(vs.Values) {
								continue
							}
							if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
								if name := strings.Trim(lit.Value, "`\""); name != "" {
									seen[name] = true
								}
							}
						}
					}
				}
			}
		}
	}

	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) < 1 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !registryCtors[sel.Sel.Name] {
						return true
					}
					if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if name := strings.Trim(lit.Value, "`\""); name != "" {
							seen[name] = true
						}
					}
					return true
				})
			}
		}
	}

	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// docMentionsMetric reports whether doc contains name at metric-name
// boundaries. The metric charset extends the flag charset with '/'
// (the registry's hierarchy separator), so a full path like
// "mem/dram_refs/ptw" is matched whole: neither "mem/dram_refs" alone
// nor "sys/tlb_misses_total" can satisfy it.
func docMentionsMetric(doc, name string) bool {
	for i := 0; ; {
		j := strings.Index(doc[i:], name)
		if j < 0 {
			return false
		}
		j += i
		i = j + 1
		if j > 0 && isMetricChar(doc[j-1]) {
			continue
		}
		if end := j + len(name); end < len(doc) && isMetricChar(doc[end]) {
			continue
		}
		return true
	}
}

// isMetricChar reports whether c can appear inside a metric name.
func isMetricChar(c byte) bool {
	return c == '/' || isFlagChar(c)
}

// packageDirs returns every directory under root containing a
// non-test .go file, skipping vendor/hidden/testdata trees.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// receiverExported reports whether d is a plain function or a method
// on an exported type. Methods on unexported types (interface
// plumbing like io.Writer impls) are not godoc surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// hasPackageDoc reports whether any file of the package carries a doc
// comment on its package clause.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// reportUndocumentedExports prints a warning for every exported
// top-level declaration lacking a doc comment and returns the count.
// Grouped declarations (var/const blocks, fields) are checked at the
// declaration level only — matching the granularity godoc renders.
func reportUndocumentedExports(fset *token.FileSet, pkg *ast.Package) int {
	n := 0
	warn := func(pos token.Pos, what, name string) {
		n++
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "lint-docs: warning: %s:%d: exported %s %s has no doc comment\n",
			p.Filename, p.Line, what, name)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
					warn(d.Pos(), "function", d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							warn(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, id := range s.Names {
							if id.IsExported() {
								warn(s.Pos(), "value", id.Name)
								break
							}
						}
					}
				}
			}
		}
	}
	return n
}
