// Command lint-docs enforces the repository's documentation floor
// (OBSERVABILITY.md grew out of the same audit): every package must
// carry a package-level doc comment. Missing package docs are fatal;
// exported declarations without doc comments are reported as warnings
// so the gap is visible without blocking CI on legacy symbols.
//
// Run from the repository root (CI does):
//
//	go run ./scripts/lint-docs.go
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint-docs: %v\n", err)
		os.Exit(2)
	}

	var missingPkg []string
	warnings := 0
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint-docs: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for name, pkg := range pkgs {
			if !hasPackageDoc(pkg) {
				missingPkg = append(missingPkg, fmt.Sprintf("%s (package %s)", dir, name))
			}
			warnings += reportUndocumentedExports(fset, pkg)
		}
	}

	if warnings > 0 {
		fmt.Fprintf(os.Stderr, "lint-docs: %d exported declarations without doc comments (warnings)\n", warnings)
	}
	if len(missingPkg) > 0 {
		sort.Strings(missingPkg)
		for _, m := range missingPkg {
			fmt.Fprintf(os.Stderr, "lint-docs: FATAL: no package doc comment: %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("lint-docs: %d packages documented, %d export warnings\n", len(dirs), warnings)
}

// packageDirs returns every directory under root containing a
// non-test .go file, skipping vendor/hidden/testdata trees.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// receiverExported reports whether d is a plain function or a method
// on an exported type. Methods on unexported types (interface
// plumbing like io.Writer impls) are not godoc surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// hasPackageDoc reports whether any file of the package carries a doc
// comment on its package clause.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// reportUndocumentedExports prints a warning for every exported
// top-level declaration lacking a doc comment and returns the count.
// Grouped declarations (var/const blocks, fields) are checked at the
// declaration level only — matching the granularity godoc renders.
func reportUndocumentedExports(fset *token.FileSet, pkg *ast.Package) int {
	n := 0
	warn := func(pos token.Pos, what, name string) {
		n++
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "lint-docs: warning: %s:%d: exported %s %s has no doc comment\n",
			p.Filename, p.Line, what, name)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
					warn(d.Pos(), "function", d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							warn(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, id := range s.Names {
							if id.IsExported() {
								warn(s.Pos(), "value", id.Name)
								break
							}
						}
					}
				}
			}
		}
	}
	return n
}
