package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runBench executes bench.sh --dry-run with the snapshot and history
// redirected into dir, returning combined output.
func runBench(t *testing.T, dir string) string {
	t.Helper()
	cmd := exec.Command("bash", "bench.sh", "--dry-run")
	cmd.Env = append(os.Environ(),
		"BENCH_OUT="+filepath.Join(dir, "hotpath.json"),
		"BENCH_HISTORY="+filepath.Join(dir, "history.jsonl"),
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bench.sh --dry-run: %v\n%s", err, out)
	}
	return string(out)
}

func historyLines(t *testing.T, dir string) []string {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(dir, "history.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
}

// An unchanged revision contributes exactly one history record no
// matter how often bench.sh runs: the second run replaces the first
// run's line instead of appending a duplicate.
func TestBenchHistoryDedupesUnchangedCommit(t *testing.T) {
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	dir := t.TempDir()

	out := runBench(t, dir)
	if !strings.Contains(out, "appended") {
		t.Fatalf("first run should append:\n%s", out)
	}
	first := historyLines(t, dir)
	if len(first) != 1 {
		t.Fatalf("history after first run has %d lines, want 1", len(first))
	}
	if !strings.Contains(first[0], `"commit":"`) || !strings.Contains(first[0], `"hotpath":{`) {
		t.Fatalf("malformed history record: %s", first[0])
	}

	out = runBench(t, dir)
	if !strings.Contains(out, "replaced 1 prior record(s)") {
		t.Fatalf("second run at the same revision should replace:\n%s", out)
	}
	second := historyLines(t, dir)
	if len(second) != 1 {
		t.Fatalf("history after re-run has %d lines, want 1 (duplicate appended)", len(second))
	}
}

// Every snapshot (and therefore every history record, which embeds the
// snapshot verbatim) carries the host it was measured on: the parallel
// numbers — intra_run_speedup above all — only compare across hosts
// with the same core count, and the perf gate keys its strictness off
// num_cpu.
func TestBenchSnapshotCarriesHostMetadata(t *testing.T) {
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	dir := t.TempDir()
	runBench(t, dir)

	blob, err := os.ReadFile(filepath.Join(dir, "hotpath.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Host struct {
			NumCPU     int    `json:"num_cpu"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			GoVersion  string `json:"go_version"`
		} `json:"host"`
	}
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, blob)
	}
	if snap.Host.NumCPU < 1 {
		t.Errorf("host.num_cpu = %d, want >= 1", snap.Host.NumCPU)
	}
	if snap.Host.GOMAXPROCS < 1 {
		t.Errorf("host.gomaxprocs = %d, want >= 1", snap.Host.GOMAXPROCS)
	}
	if !strings.HasPrefix(snap.Host.GoVersion, "go") {
		t.Errorf("host.go_version = %q, want a goX.Y.Z string", snap.Host.GoVersion)
	}
	// The history record embeds the snapshot, host object included.
	line := historyLines(t, dir)[0]
	if !strings.Contains(line, `"host":`) || !strings.Contains(line, `"num_cpu":`) {
		t.Errorf("history record lost the host metadata: %s", line)
	}
}

// A history seeded before deduplication existed can hold several
// records of one revision, scattered around foreign records. Re-running
// at that revision collapses all of them into the single fresh record
// while leaving the foreign records untouched and in order.
func TestBenchHistoryCollapsesScatteredDuplicates(t *testing.T) {
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	dir := t.TempDir()

	// First run discovers the current revision string.
	runBench(t, dir)
	seed := historyLines(t, dir)[0]

	foreign := `{"timestamp":"2026-01-01T00:00:00Z","commit":"deadbee","hotpath":{}}`
	pre := seed + "\n" + foreign + "\n" + seed + "\n" + seed + "\n"
	if err := os.WriteFile(filepath.Join(dir, "history.jsonl"), []byte(pre), 0o644); err != nil {
		t.Fatal(err)
	}

	out := runBench(t, dir)
	if !strings.Contains(out, "replaced 3 prior record(s)") {
		t.Fatalf("run should collapse all three duplicates:\n%s", out)
	}
	lines := historyLines(t, dir)
	if len(lines) != 2 {
		t.Fatalf("history has %d lines, want 2 (foreign + fresh): %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], `"commit":"deadbee"`) {
		t.Fatalf("foreign record lost or reordered: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"hotpath":{`) {
		t.Fatalf("fresh record malformed: %s", lines[1])
	}
}

// A history whose last record belongs to a different revision is
// appended to, never rewritten — only same-revision re-runs replace.
func TestBenchHistoryAppendsAcrossCommits(t *testing.T) {
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	dir := t.TempDir()
	prior := `{"timestamp":"2026-01-01T00:00:00Z","commit":"deadbee","hotpath":{}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "history.jsonl"), []byte(prior), 0o644); err != nil {
		t.Fatal(err)
	}

	out := runBench(t, dir)
	if !strings.Contains(out, "appended") {
		t.Fatalf("run at a new revision should append:\n%s", out)
	}
	lines := historyLines(t, dir)
	if len(lines) != 2 {
		t.Fatalf("history has %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"commit":"deadbee"`) {
		t.Fatalf("prior record rewritten: %s", lines[0])
	}
}
