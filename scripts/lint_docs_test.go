package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materialises a map of relative path → contents under a
// fresh temp root and returns the root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, body := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const zooSource = `// Package translation is a fixture.
package translation

func init() {
	Register("tempo", nil)
	Register("victima", nil)
}

func more() {
	translation.Register("revelator", nil)
}
`

func TestRegisteredMechanismsParsesRegisterCalls(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
		// Test files must not contribute names.
		"internal/translation/zoo_test.go": "package translation\n\nfunc init() { Register(\"testonly\", nil) }\n",
	})
	names, err := registeredMechanisms(filepath.Join(root, "internal", "translation"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"revelator", "tempo", "victima"}
	if len(names) != len(want) {
		t.Fatalf("registeredMechanisms = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registeredMechanisms = %v, want %v", names, want)
		}
	}
}

func TestRegisteredMechanismsMissingDirIsEmpty(t *testing.T) {
	names, err := registeredMechanisms(filepath.Join(t.TempDir(), "no", "such", "dir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("registeredMechanisms on missing dir = %v, want none", names)
	}
}

func TestMechanismDocGapsFailsOnMissingName(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
		// victima appears only as a longer identifier; revelator is
		// absent entirely — both must be reported. tempo is covered.
		"MECHANISMS.md": "# zoo\n\nThe `tempo` mechanism. Also victimax exists.\n",
	})
	gaps := mechanismDocGaps(root)
	if len(gaps) != 2 {
		t.Fatalf("mechanismDocGaps = %v, want 2 gaps (revelator, victima)", gaps)
	}
}

func TestMechanismDocGapsPassesWhenAllMentioned(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
		"MECHANISMS.md":               "# zoo\n\n`tempo`, `victima` and mech/revelator/* are all here.\n",
	})
	if gaps := mechanismDocGaps(root); len(gaps) != 0 {
		t.Fatalf("mechanismDocGaps = %v, want none", gaps)
	}
}

func TestMechanismDocGapsMissingSpecFileIsFatal(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
	})
	gaps := mechanismDocGaps(root)
	if len(gaps) != 1 {
		t.Fatalf("mechanismDocGaps without MECHANISMS.md = %v, want 1", gaps)
	}
}

func TestMechanismDocGapsNoZooTriviallyPasses(t *testing.T) {
	if gaps := mechanismDocGaps(t.TempDir()); len(gaps) != 0 {
		t.Fatalf("mechanismDocGaps on empty repo = %v, want none", gaps)
	}
}

const obsvSource = `// Package obsv is a fixture.
package obsv

const (
	MetricTLBMisses = "sys/tlb_misses"
	MetricCPICycles = "cpi/cycles"
	notAMetric      = "sys/ignore_me"
)

// MetricDocstring is not a name constant (no string literal value).
var MetricDocstring = MetricTLBMisses
`

const registrarSource = `// Package sim is a fixture.
package sim

import "fmt"

func attach(reg registry, prefix string) {
	reg.Counter("mem/reads")
	reg.Histogram("dram/queue_depth")
	reg.Gauge("sim/epochs", nil)
	reg.Counter(prefix + "/misses")                    // computed: skipped
	reg.Histogram(fmt.Sprintf("core%d/walk", 0))       // computed: skipped
}
`

func TestRegisteredMetricNames(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/obsv/audit.go": obsvSource,
		"internal/sim/obsv.go":   registrarSource,
		// Registrations in test files must not contribute names.
		"internal/sim/obsv_test.go": "package sim\n\nfunc f(reg registry) { reg.Counter(\"cpi/test_only\") }\n",
	})
	names, err := registeredMetricNames(root, []string{
		filepath.Join(root, "internal", "obsv"),
		filepath.Join(root, "internal", "sim"),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cpi/cycles", "dram/queue_depth", "mem/reads", "sim/epochs", "sys/tlb_misses"}
	if len(names) != len(want) {
		t.Fatalf("registeredMetricNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registeredMetricNames = %v, want %v", names, want)
		}
	}
}

func TestMetricDocGapsFlagsUndocumentedNames(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/obsv/audit.go": obsvSource,
		"internal/sim/obsv.go":   registrarSource,
		// sys/tlb_misses appears only as a longer name (no boundary
		// match); cpi/cycles and sim/epochs are absent entirely;
		// mem/reads and dram/queue_depth are covered.
		"OBSERVABILITY.md": "# obs\n\n`mem/reads`, dram/queue_depth and sys/tlb_misses_total.\n",
	})
	gaps := metricDocGaps(root, []string{
		filepath.Join(root, "internal", "obsv"),
		filepath.Join(root, "internal", "sim"),
	})
	if len(gaps) != 3 {
		t.Fatalf("metricDocGaps = %v, want 3 gaps (cpi/cycles, sim/epochs, sys/tlb_misses)", gaps)
	}
}

func TestMetricDocGapsPassesWhenAllMentioned(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/obsv/audit.go": obsvSource,
		"internal/sim/obsv.go":   registrarSource,
		"OBSERVABILITY.md": "# obs\n\n`mem/reads` `dram/queue_depth` `sim/epochs` " +
			"`sys/tlb_misses` `cpi/cycles`\n",
	})
	if gaps := metricDocGaps(root, []string{
		filepath.Join(root, "internal", "obsv"),
		filepath.Join(root, "internal", "sim"),
	}); len(gaps) != 0 {
		t.Fatalf("metricDocGaps = %v, want none", gaps)
	}
}

func TestMetricDocGapsMissingDocIsFatal(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/obsv/audit.go": obsvSource,
	})
	gaps := metricDocGaps(root, []string{filepath.Join(root, "internal", "obsv")})
	if len(gaps) != 1 {
		t.Fatalf("metricDocGaps without OBSERVABILITY.md = %v, want 1", gaps)
	}
}

func TestMetricDocGapsNoMetricsTriviallyPasses(t *testing.T) {
	if gaps := metricDocGaps(t.TempDir(), nil); len(gaps) != 0 {
		t.Fatalf("metricDocGaps on empty repo = %v, want none", gaps)
	}
}

func TestDocMentionsMetricBoundaries(t *testing.T) {
	cases := []struct {
		doc, name string
		want      bool
	}{
		{"the `sys/tlb_misses` gauge", "sys/tlb_misses", true},
		{"sys/tlb_misses_total", "sys/tlb_misses", false},
		{"mem/dram_refs/ptw", "mem/dram_refs", false}, // prefix of a longer path
		{"mem/dram_refs/ptw", "mem/dram_refs/ptw", true},
		{"cpi/cycles.", "cpi/cycles", true}, // '.' is a boundary
		{"xcpi/cycles", "cpi/cycles", false},
		{"", "cpi/cycles", false},
	}
	for _, c := range cases {
		if got := docMentionsMetric(c.doc, c.name); got != c.want {
			t.Errorf("docMentionsMetric(%q, %q) = %v, want %v", c.doc, c.name, got, c.want)
		}
	}
}

func TestDocMentionsWordBoundaries(t *testing.T) {
	cases := []struct {
		doc, name string
		want      bool
	}{
		{"the victima mechanism", "victima", true},
		{"`victima`", "victima", true},
		{"mech/victima/lookups", "victima", true},
		{"victimax", "victima", false},
		{"revictima", "victima", false},
		{"victima-like", "victima", false},
		{"", "victima", false},
		{"victima", "victima", true},
	}
	for _, c := range cases {
		if got := docMentionsWord(c.doc, c.name); got != c.want {
			t.Errorf("docMentionsWord(%q, %q) = %v, want %v", c.doc, c.name, got, c.want)
		}
	}
}
