package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materialises a map of relative path → contents under a
// fresh temp root and returns the root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, body := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const zooSource = `// Package translation is a fixture.
package translation

func init() {
	Register("tempo", nil)
	Register("victima", nil)
}

func more() {
	translation.Register("revelator", nil)
}
`

func TestRegisteredMechanismsParsesRegisterCalls(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
		// Test files must not contribute names.
		"internal/translation/zoo_test.go": "package translation\n\nfunc init() { Register(\"testonly\", nil) }\n",
	})
	names, err := registeredMechanisms(filepath.Join(root, "internal", "translation"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"revelator", "tempo", "victima"}
	if len(names) != len(want) {
		t.Fatalf("registeredMechanisms = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registeredMechanisms = %v, want %v", names, want)
		}
	}
}

func TestRegisteredMechanismsMissingDirIsEmpty(t *testing.T) {
	names, err := registeredMechanisms(filepath.Join(t.TempDir(), "no", "such", "dir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("registeredMechanisms on missing dir = %v, want none", names)
	}
}

func TestMechanismDocGapsFailsOnMissingName(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
		// victima appears only as a longer identifier; revelator is
		// absent entirely — both must be reported. tempo is covered.
		"MECHANISMS.md": "# zoo\n\nThe `tempo` mechanism. Also victimax exists.\n",
	})
	gaps := mechanismDocGaps(root)
	if len(gaps) != 2 {
		t.Fatalf("mechanismDocGaps = %v, want 2 gaps (revelator, victima)", gaps)
	}
}

func TestMechanismDocGapsPassesWhenAllMentioned(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
		"MECHANISMS.md":               "# zoo\n\n`tempo`, `victima` and mech/revelator/* are all here.\n",
	})
	if gaps := mechanismDocGaps(root); len(gaps) != 0 {
		t.Fatalf("mechanismDocGaps = %v, want none", gaps)
	}
}

func TestMechanismDocGapsMissingSpecFileIsFatal(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/translation/zoo.go": zooSource,
	})
	gaps := mechanismDocGaps(root)
	if len(gaps) != 1 {
		t.Fatalf("mechanismDocGaps without MECHANISMS.md = %v, want 1", gaps)
	}
}

func TestMechanismDocGapsNoZooTriviallyPasses(t *testing.T) {
	if gaps := mechanismDocGaps(t.TempDir()); len(gaps) != 0 {
		t.Fatalf("mechanismDocGaps on empty repo = %v, want none", gaps)
	}
}

func TestDocMentionsWordBoundaries(t *testing.T) {
	cases := []struct {
		doc, name string
		want      bool
	}{
		{"the victima mechanism", "victima", true},
		{"`victima`", "victima", true},
		{"mech/victima/lookups", "victima", true},
		{"victimax", "victima", false},
		{"revictima", "victima", false},
		{"victima-like", "victima", false},
		{"", "victima", false},
		{"victima", "victima", true},
	}
	for _, c := range cases {
		if got := docMentionsWord(c.doc, c.name); got != c.want {
			t.Errorf("docMentionsWord(%q, %q) = %v, want %v", c.doc, c.name, got, c.want)
		}
	}
}
