#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the tempo-serve job service
# (CI's "Serve smoke" step; see SERVICE.md).
#
# Builds tempo-serve, starts it on an ephemeral port with a throwaway
# cache directory, and drives one job through the HTTP API:
#   1. POST /jobs with a tiny generated config (scripts/mkcfg)
#      -> expect 201 Created and a job id
#   2. poll GET /jobs/{id} until the job reaches a terminal state
#      -> expect "completed" and a result payload
#   3. POST the identical config again
#      -> expect 200 with "cacheHit": true and no new execution
# Any deviation (timeout, failed job, cache miss on re-submit) fails
# the script; the server is torn down on exit either way.
#
# Usage:  scripts/serve-smoke.sh [records]   (default 2000)
set -euo pipefail
cd "$(dirname "$0")/.."

RECORDS="${1:-2000}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "${SERVER_PID}" ]; then
    kill "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${TMP}"
}
trap cleanup EXIT

echo "== building tempo-serve" >&2
go build -o "${TMP}/tempo-serve" ./cmd/tempo-serve

echo "== starting tempo-serve on an ephemeral port" >&2
"${TMP}/tempo-serve" -http 127.0.0.1:0 -cache-dir "${TMP}/cache" \
  2> "${TMP}/serve.log" &
SERVER_PID=$!

BASE=""
for _ in $(seq 1 100); do
  BASE="$(sed -n 's#^tempo-serve listening on \(http://[^ ]*\)$#\1#p' "${TMP}/serve.log" | head -n 1)"
  [ -n "${BASE}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "serve-smoke: server died during startup:" >&2
    cat "${TMP}/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "${BASE}" ]; then
  echo "serve-smoke: server never announced its address" >&2
  cat "${TMP}/serve.log" >&2
  exit 1
fi
echo "== server at ${BASE}" >&2

echo "== submitting a tiny xsbench config (${RECORDS} records)" >&2
go run ./scripts/mkcfg -workload xsbench -records "${RECORDS}" > "${TMP}/cfg.json"
python3 -c 'import json,sys; json.dump({"config": json.load(open(sys.argv[1]))}, open(sys.argv[2], "w"))' \
  "${TMP}/cfg.json" "${TMP}/req.json"

STATUS="$(curl -sS -o "${TMP}/submit1.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' -d @"${TMP}/req.json" "${BASE}/jobs")"
if [ "${STATUS}" != 201 ]; then
  echo "serve-smoke: first submit returned HTTP ${STATUS}, want 201:" >&2
  cat "${TMP}/submit1.json" >&2
  exit 1
fi
JOB_ID="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["job"]["id"])' "${TMP}/submit1.json")"
echo "== job ${JOB_ID} accepted, polling to completion" >&2

STATE=""
for _ in $(seq 1 600); do
  curl -sS -o "${TMP}/job.json" "${BASE}/jobs/${JOB_ID}"
  STATE="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["job"]["state"])' "${TMP}/job.json")"
  case "${STATE}" in
    completed) break ;;
    failed|canceled)
      echo "serve-smoke: job reached ${STATE}:" >&2
      cat "${TMP}/job.json" >&2
      exit 1 ;;
  esac
  sleep 0.2
done
if [ "${STATE}" != completed ]; then
  echo "serve-smoke: job still ${STATE} after polling window" >&2
  exit 1
fi
python3 -c 'import json,sys
st = json.load(open(sys.argv[1]))
assert st.get("result"), "completed job carries no result"
' "${TMP}/job.json"
echo "== job completed with a result payload" >&2

echo "== re-submitting the identical config" >&2
STATUS="$(curl -sS -o "${TMP}/submit2.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' -d @"${TMP}/req.json" "${BASE}/jobs")"
if [ "${STATUS}" != 200 ]; then
  echo "serve-smoke: re-submit returned HTTP ${STATUS}, want 200:" >&2
  cat "${TMP}/submit2.json" >&2
  exit 1
fi
python3 -c 'import json,sys
resp = json.load(open(sys.argv[1]))
assert resp.get("cacheHit") is True, "re-submit was not served from cache: %r" % resp
assert resp.get("created") is False, "re-submit created a new job: %r" % resp
' "${TMP}/submit2.json"

echo "serve-smoke: OK (job ${JOB_ID} ran once, re-submit was a cache hit)" >&2
