// Command mkcfg prints a ready-to-submit simulation configuration as
// JSON on stdout: the library default for the named workload (-workload,
// default xsbench) with the trace length overridden (-records, default
// 2000) and optionally TEMPO enabled (-tempo). It exists so shell-level
// tooling — scripts/serve-smoke.sh in CI — can POST a well-formed tiny
// config to tempo-serve's job API without hand-maintaining the Config
// schema in JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	tempo "repro"
)

func main() {
	workload := flag.String("workload", "xsbench", "workload name")
	records := flag.Int("records", 2000, "trace records per core")
	useTempo := flag.Bool("tempo", false, "enable TEMPO prefetching")
	flag.Parse()

	cfg := tempo.DefaultConfig(*workload)
	cfg.Records = *records
	if *useTempo {
		cfg.Tempo = tempo.DefaultTempo()
	}
	blob, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkcfg:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(blob, '\n'))
}
