#!/usr/bin/env bash
# bench.sh — measure the simulator's per-record hot path and emit
# BENCH_hotpath.json.
#
# Runs the throughput microbenchmarks (one op = one trace record):
#   BenchmarkHotPathTempo                xsbench + TEMPO, the paper's hot path
#   BenchmarkHotPathMultiTempo           4 xsbench cores, shared LLC, TEMPO on
#   BenchmarkHotPathMultiTempoParallel   same run at Workers=4 (epoch-barrier
#                                        parallel coordinator; bit-identical
#                                        results, different wall-clock)
#   BenchmarkSimulatorThroughput         graph500 baseline, no prefetching
# with -benchmem, parses records/s, ns/record, B/record and
# allocs/record, and writes them next to the pinned pre-rewrite
# baseline (captured on the goroutine-coroutine scheduler at commit
# de0e01d) so the speedup is tracked in-repo. The multi-core benchmarks
# have no pre-rewrite baseline (they were added with the batching and
# epoch-barrier coordinators); their "after" numbers still feed the CI
# diff gate, and multicore_tempo_parallel.intra_run_speedup tracks the
# Workers=4 / Workers=1 throughput ratio on the measuring host (~1.0 on
# a single-CPU host — the parallel path is gated on real concurrency).
#
# Besides regenerating BENCH_hotpath.json (the "latest" snapshot that
# `tempo-report diff` gates against), each run appends one timestamped
# record to BENCH_history.jsonl, the cumulative measurement log — plot
# it or diff any two eras with
#   tempo-report diff <(sed -n 1p BENCH_history.jsonl) <(sed -n '$p' BENCH_history.jsonl)
#
# History appends are deduplicated by source revision: re-running at an
# unchanged commit drops every prior record of that revision before
# appending the fresh one, so one line of BENCH_history.jsonl is one
# measured revision wherever the earlier records sit (a dirty tree is
# its own "-dirty" revision and always re-measures). This also repairs
# histories seeded before deduplication existed, which could hold runs
# of identical-revision lines.
#
# Usage:  scripts/bench.sh [--dry-run] [records-per-run]   (default 300000)
#   --dry-run      skip the Go benchmarks and emit canned numbers — for
#                  exercising the snapshot/history plumbing in tests
#   BENCH_OUT      override the snapshot path (default BENCH_hotpath.json)
#   BENCH_HISTORY  override the history path (default BENCH_history.jsonl)
set -euo pipefail
cd "$(dirname "$0")/.."

DRY_RUN=0
if [ "${1:-}" = "--dry-run" ]; then
  DRY_RUN=1
  shift
fi
RECORDS="${1:-300000}"
OUT="${BENCH_OUT:-BENCH_hotpath.json}"

# run_bench NAME — prints "records_s ns_rec bytes_rec allocs_rec".
# The result line is matched with or without the -GOMAXPROCS suffix go
# test appends on multi-core hosts.
run_bench() {
  go test -run=NONE -bench="^$1\$" -benchtime="${RECORDS}x" -benchmem -count=1 . |
    awk -v name="$1" '
      $1 == name || $1 ~ "^" name "-[0-9]+$" {
        for (i = 2; i < NF; i++) {
          if ($(i+1) == "records/s") rs = $i
          if ($(i+1) == "ns/op")     ns = $i
          if ($(i+1) == "B/op")      bp = $i
          if ($(i+1) == "allocs/op") ap = $i
        }
        print rs, ns, bp, ap
      }'
}

if [ "${DRY_RUN}" = 1 ]; then
  echo "== dry run: emitting canned hot-path numbers" >&2
  T_RS=500000; T_NS=2000; T_BP=100; T_AP=1
  M_RS=400000; M_NS=2500; M_BP=120; M_AP=1
  P_RS=420000; P_NS=2380; P_BP=120; P_AP=1
  G_RS=800000; G_NS=1250; G_BP=70; G_AP=0
else
  echo "== measuring hot path (${RECORDS} records per benchmark)" >&2
  read -r T_RS T_NS T_BP T_AP < <(run_bench BenchmarkHotPathTempo)
  read -r M_RS M_NS M_BP M_AP < <(run_bench BenchmarkHotPathMultiTempo)
  read -r P_RS P_NS P_BP P_AP < <(run_bench 'BenchmarkHotPathMultiTempoParallel')
  read -r G_RS G_NS G_BP G_AP < <(run_bench BenchmarkSimulatorThroughput)
fi
if [ -z "${T_RS}" ] || [ -z "${M_RS}" ] || [ -z "${P_RS}" ] || [ -z "${G_RS}" ]; then
  echo "bench.sh: failed to parse benchmark output" >&2
  exit 1
fi

# Pre-rewrite baseline, measured at the same record counts on the
# channel-coroutine scheduler this PR replaced.
B_T_RS=441601; B_T_NS=2264; B_T_BP=115
B_G_RS=790535; B_G_NS=1265; B_G_BP=73

# Host metadata. The parallel numbers — intra_run_speedup above all —
# are only comparable between measurements taken on hosts with the same
# core count (a single-CPU host can never show a Workers=4 speedup), so
# every snapshot and history record carries the machine it was measured
# on. GOMAXPROCS defaults to the CPU count when the variable is unset,
# mirroring the Go runtime.
NUM_CPU="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
HOST_GOMAXPROCS="${GOMAXPROCS:-${NUM_CPU}}"
GO_VERSION="$(go env GOVERSION 2>/dev/null || echo unknown)"

speedup() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

cat > "${OUT}" <<EOF
{
  "benchmark": "per-record hot path (go test -bench, one op = one trace record)",
  "records_per_run": ${RECORDS},
  "baseline_commit": "de0e01d (goroutine-coroutine scheduler)",
  "host": { "num_cpu": ${NUM_CPU}, "gomaxprocs": ${HOST_GOMAXPROCS}, "go_version": "${GO_VERSION}" },
  "xsbench_tempo": {
    "before": { "records_per_sec": ${B_T_RS}, "ns_per_record": ${B_T_NS}, "bytes_per_record": ${B_T_BP} },
    "after":  { "records_per_sec": ${T_RS}, "ns_per_record": ${T_NS}, "bytes_per_record": ${T_BP}, "allocs_per_record": ${T_AP} },
    "speedup": $(speedup "${T_RS}" "${B_T_RS}")
  },
  "multicore_tempo": {
    "after":  { "records_per_sec": ${M_RS}, "ns_per_record": ${M_NS}, "bytes_per_record": ${M_BP}, "allocs_per_record": ${M_AP} }
  },
  "multicore_tempo_parallel": {
    "after":  { "records_per_sec": ${P_RS}, "ns_per_record": ${P_NS}, "bytes_per_record": ${P_BP}, "allocs_per_record": ${P_AP} },
    "intra_run_speedup": $(speedup "${P_RS}" "${M_RS}")
  },
  "graph500_baseline": {
    "before": { "records_per_sec": ${B_G_RS}, "ns_per_record": ${B_G_NS}, "bytes_per_record": ${B_G_BP} },
    "after":  { "records_per_sec": ${G_RS}, "ns_per_record": ${G_NS}, "bytes_per_record": ${G_BP}, "allocs_per_record": ${G_AP} },
    "speedup": $(speedup "${G_RS}" "${B_G_RS}")
  }
}
EOF
echo "wrote ${OUT}" >&2
cat "${OUT}"

# Append this measurement to the cumulative history, one JSON object
# per line, stamped with wall-clock time and the source revision. Any
# earlier record of the same revision is dropped first (newest
# measurement wins) so an unchanged commit contributes exactly one
# history record however often the script runs — including histories
# seeded before deduplication existed, whose duplicate rows are
# collapsed the next time their revision is re-measured.
HISTORY="${BENCH_HISTORY:-BENCH_history.jsonl}"
STAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DIRTY=""
if ! git diff --quiet 2>/dev/null || ! git diff --cached --quiet 2>/dev/null; then
  DIRTY="-dirty"
fi
REV="${COMMIT}${DIRTY}"
ACTION="appended"
if [ -s "${HISTORY}" ]; then
  # The outer "commit" key has no space before its value; the inner
  # snapshot's "baseline_commit": cannot match this fixed string.
  DUPES="$(grep -cF "\"commit\":\"${REV}\"" "${HISTORY}" || true)"
  if [ "${DUPES}" -gt 0 ]; then
    grep -vF "\"commit\":\"${REV}\"" "${HISTORY}" > "${HISTORY}.tmp" || true
    mv "${HISTORY}.tmp" "${HISTORY}"
    ACTION="replaced ${DUPES} prior record(s) in"
  fi
fi
# Fold the pretty-printed snapshot onto one line (strip indentation
# and newlines only — spaces inside string values stay intact).
printf '{"timestamp":"%s","commit":"%s","hotpath":%s}\n' \
  "${STAMP}" "${REV}" \
  "$(sed 's/^[[:space:]]*//' "${OUT}" | tr -d '\n')" >> "${HISTORY}"
echo "${ACTION} ${HISTORY} (${STAMP}, ${REV})" >&2
