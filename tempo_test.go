package tempo

import (
	"strings"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	cfg := DefaultConfig("xsbench")
	cfg.Records = 8_000
	cfg.Workloads[0].Footprint = 192 << 20
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tempo = DefaultTempo()
	tempo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tempo.Total.Cycles >= base.Total.Cycles {
		t.Errorf("TEMPO did not help: %d vs %d", tempo.Total.Cycles, base.Total.Cycles)
	}
	if base.IPC() <= 0 || tempo.Energy.Total() <= 0 {
		t.Error("metrics missing")
	}
}

func TestWorkloadCatalog(t *testing.T) {
	if len(BigWorkloads()) != 8 || len(SmallWorkloads()) != 6 {
		t.Errorf("catalog sizes: %d big, %d small", len(BigWorkloads()), len(SmallWorkloads()))
	}
	for _, w := range BigWorkloads() {
		if strings.HasSuffix(w, ".small") {
			t.Errorf("big list contains %s", w)
		}
	}
}

func TestFigureRegistryExposed(t *testing.T) {
	if len(Figures()) != 11 { // fig01..fig17 + mech01
		t.Errorf("figures = %d", len(Figures()))
	}
	if _, err := RunFigure("fig99", QuickScale()); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunFigureSmoke(t *testing.T) {
	s := QuickScale()
	s.Records = 4_000
	s.Footprint = 128 << 20
	s.Big = []string{"mcf"}
	rep, err := RunFigure("fig01", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.ID != "fig01" {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "mcf") {
		t.Error("render missing workload")
	}
}
